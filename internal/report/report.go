// Package report renders experiment results as aligned text tables, CSV and
// Markdown.  Every experiment produces one or more Tables; the CLI and the
// benchmark harness choose the output format.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells with named columns.  Cells are
// stored as already-formatted strings, which is also what keeps the JSON
// rendering byte-stable: no float formatting happens at serialisation time.
type Table struct {
	Title   string     `json:"title"`
	Notes   []string   `json:"notes,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddNote appends a free-text footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddRow appends a row, formatting each cell with Cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Cell formats a value for table output: floats get a compact fixed
// precision, everything else uses the default formatting.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// RenderText writes the table as an aligned plain-text grid.
func (t *Table) RenderText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteString("\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (columns header first, notes omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Render writes the table in the requested format: "text", "csv" or
// "markdown"/"md".
func (t *Table) Render(w io.Writer, format string) error {
	switch strings.ToLower(format) {
	case "", "text", "txt":
		return t.RenderText(w)
	case "csv":
		return t.RenderCSV(w)
	case "markdown", "md":
		return t.RenderMarkdown(w)
	default:
		return fmt.Errorf("report: unknown format %q", format)
	}
}
