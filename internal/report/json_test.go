package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureReport exercises the corners of serialisation: float formatting,
// cells needing CSV quoting, notes, an experiment error, and every manifest
// field.
func fixtureReport() *Report {
	t1 := NewTable("E0: sweep", "family", "n", "scheme", "greedy_diam", "ci95", "label")
	t1.AddRow("path", 1024, "uniform", 31.62277, 0.4567, `quoted "cell"`)
	t1.AddRow("grid, 2d", 4096, "ball", 16.0, 0.0, "comma, separated")
	t1.AddRow("cycle", 999999, "none", 12345.678, 1e-9, "plain")
	t1.AddNote("note with unicode ≈ and a %d verb", 42)
	t1.AddNote("second note")
	t2 := NewTable("E0: fits", "family", "exponent", "R2")
	t2.AddRow("path", 0.5012, 0.9987)
	return &Report{
		Manifest: Manifest{
			Tool:           "navsim",
			FormatVersion:  FormatVersion,
			Seed:           20070610,
			Scale:          0.25,
			Precision:      0.1,
			PairsOverride:  8,
			TrialsOverride: 4,
			MaxTrials:      64,
			Experiments:    []string{"E0", "EBAD"},
		},
		Experiments: []ExperimentResult{
			{ID: "E0", Title: "fixture experiment", Claim: "fixtures stay stable", Tables: []*Table{t1, t2}},
			{ID: "EBAD", Title: "failing experiment", Claim: "errors are recorded", Error: "boom: graph exploded"},
		},
	}
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/report -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The document must be valid JSON with the manifest fields intact before
	// it is compared byte-for-byte.
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if decoded.Manifest.Seed != 20070610 || decoded.Manifest.Scale != 0.25 || decoded.Manifest.Tool != "navsim" {
		t.Fatalf("manifest did not round-trip: %+v", decoded.Manifest)
	}
	if len(decoded.Experiments) != 2 || decoded.Experiments[1].Error == "" {
		t.Fatalf("experiments did not round-trip: %+v", decoded.Experiments)
	}
	goldenCompare(t, "report.json.golden", buf.Bytes())
}

func TestTableCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, tbl := range fixtureReport().Experiments[0].Tables {
		if err := tbl.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	goldenCompare(t, "tables.csv.golden", buf.Bytes())
}

func TestReportRenderDispatch(t *testing.T) {
	rep := &Report{
		Manifest:    Manifest{Tool: "navsim", FormatVersion: FormatVersion, Seed: 1, Scale: 1, Experiments: []string{"E0"}},
		Experiments: []ExperimentResult{fixtureReport().Experiments[0]},
	}
	for _, format := range []string{"json", "text", "csv", "md"} {
		var buf bytes.Buffer
		if err := rep.Render(&buf, format); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %s produced nothing", format)
		}
	}
	// A report carrying an experiment error renders fine as JSON but must
	// refuse the table formats (there is nothing honest to print).
	bad := fixtureReport()
	var buf bytes.Buffer
	if err := bad.Render(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	if err := bad.Render(&buf, "text"); err == nil {
		t.Fatal("error-carrying report rendered as text without complaint")
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureReport().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureReport().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSON serialisation is not deterministic")
	}
}
