// Package label implements the integer level/ancestor hierarchy and the
// node labeling used by the paper's Theorem 2 matrix-based augmentation
// scheme.
//
// Every positive integer x has a level, the position of the least
// significant set bit of x, and a chain of ancestors obtained by repeatedly
// rounding x up the implicit binary hierarchy: the ancestor of x at level
// level(x)+j keeps the bits of x above position level(x)+j and sets bit
// level(x)+j.  Applied between consecutive levels the relation forms an
// infinite binary tree whose leaves are the odd integers.
//
// Theorem 2 labels the nodes of a graph through a path decomposition whose
// bags are numbered 1..b: node u receives the index, among the consecutive
// bag indices containing u, of maximum level.  The matrix half of the scheme
// then sends long-range links towards the (nodes labeled with) ancestors of
// the current node's label.
package label

import (
	"fmt"
	"math/bits"

	"navaug/internal/decomp"
	"navaug/internal/graph"
)

// Level returns the level of x >= 1: the position of its least significant
// set bit (level(1)=0, level(2)=1, level(4)=2, level(6)=1, ...).
// It panics for x < 1.
func Level(x int) int {
	if x < 1 {
		panic("label: Level requires x >= 1")
	}
	return bits.TrailingZeros64(uint64(x))
}

// Ancestor returns the ancestor of x at level Level(x)+j (j >= 0).
// Ancestor(x, 0) == x.
func Ancestor(x, j int) int {
	if x < 1 {
		panic("label: Ancestor requires x >= 1")
	}
	if j < 0 {
		panic("label: Ancestor requires j >= 0")
	}
	k := Level(x)
	target := k + j
	if target >= 63 {
		panic("label: Ancestor level overflow")
	}
	// Keep bits strictly above `target`, then set bit `target`.
	high := x &^ ((1 << uint(target+1)) - 1)
	return high | (1 << uint(target))
}

// Ancestors returns all ancestors of x (including x itself) that are at most
// maxValue, in increasing level order.  The slice has at most
// log2(maxValue)+1 entries.
func Ancestors(x, maxValue int) []int {
	if x < 1 {
		panic("label: Ancestors requires x >= 1")
	}
	if maxValue < 1 {
		return nil
	}
	// Ancestor values are not monotone in j (e.g. A(3) = {3, 2, 4, 8, ...}),
	// but the ancestor at level k+j is at least 2^(k+j), so once that power of
	// two exceeds maxValue no further ancestor can qualify.
	k := Level(x)
	var out []int
	for j := 0; k+j < 62 && (1<<uint(k+j)) <= maxValue; j++ {
		if a := Ancestor(x, j); a <= maxValue {
			out = append(out, a)
		}
	}
	return out
}

// IsAncestor reports whether a is an ancestor of x (including a == x).
func IsAncestor(a, x int) bool {
	if a < 1 || x < 1 {
		panic("label: IsAncestor requires positive integers")
	}
	ka, kx := Level(a), Level(x)
	if ka < kx {
		return false
	}
	return Ancestor(x, ka-kx) == a
}

// LeastCommonAncestorLevel returns the smallest level l >= max(level(x),
// level(y)) at which x and y share an ancestor.  Any two positive integers
// share ancestors at all sufficiently high levels.
func LeastCommonAncestorLevel(x, y int) int {
	if x < 1 || y < 1 {
		panic("label: LeastCommonAncestorLevel requires positive integers")
	}
	for l := maxInt(Level(x), Level(y)); l < 62; l++ {
		if Ancestor(x, l-Level(x)) == Ancestor(y, l-Level(y)) {
			return l
		}
	}
	panic("label: no common ancestor below level 62")
}

// Labeling is the result of labeling a graph's nodes through a path
// decomposition.  Labels are 1-based bag indices in [1, B]; several nodes
// may share a label and some indices may label no node.
type Labeling struct {
	// Labels[v] is the label of node v, in [1, B].
	Labels []int
	// B is the number of bags of the decomposition the labeling came from.
	B int
	// NodesByLabel[l] lists the nodes labeled l (l in [1, B]); index 0 unused.
	NodesByLabel [][]graph.NodeID
}

// FromPathDecomposition computes the Theorem 2 labeling for graph g and the
// given (validated) path decomposition: node u gets the bag index of
// maximum level among the consecutive indices of bags containing u.
func FromPathDecomposition(g *graph.Graph, pd *decomp.PathDecomposition) (*Labeling, error) {
	if err := pd.Validate(g); err != nil {
		return nil, fmt.Errorf("label: invalid decomposition: %w", err)
	}
	n := g.N()
	b := pd.B()
	if n > 0 && b == 0 {
		return nil, fmt.Errorf("label: decomposition has no bags")
	}
	first, last := pd.NodeIntervals(n)
	labels := make([]int, n)
	byLabel := make([][]graph.NodeID, b+1)
	for v := 0; v < n; v++ {
		// Bag indices are 1-based in the paper; node intervals are 0-based.
		lo, hi := first[v]+1, last[v]+1
		best := lo
		for i := lo; i <= hi; i++ {
			if Level(i) > Level(best) {
				best = i
			}
		}
		labels[v] = best
		byLabel[best] = append(byLabel[best], graph.NodeID(v))
	}
	return &Labeling{Labels: labels, B: b, NodesByLabel: byLabel}, nil
}

// MaxLevelIndexInRange returns the unique index of maximum level within the
// closed integer range [lo, hi] (1 <= lo <= hi).  This is the quantity the
// labeling uses; it is exposed for tests and for documentation of the
// "unique maximum level" property.
func MaxLevelIndexInRange(lo, hi int) int {
	if lo < 1 || hi < lo {
		panic("label: MaxLevelIndexInRange requires 1 <= lo <= hi")
	}
	best := lo
	for i := lo + 1; i <= hi; i++ {
		if Level(i) > Level(best) {
			best = i
		}
	}
	return best
}

// Nodes returns the nodes carrying the given label (possibly empty).
func (l *Labeling) Nodes(lbl int) []graph.NodeID {
	if lbl < 1 || lbl > l.B {
		return nil
	}
	return l.NodesByLabel[lbl]
}

// Validate checks structural invariants of the labeling: labels lie in
// [1, B] and NodesByLabel is consistent with Labels.
func (l *Labeling) Validate() error {
	counts := make([]int, l.B+1)
	for v, lbl := range l.Labels {
		if lbl < 1 || lbl > l.B {
			return fmt.Errorf("label: node %d has label %d outside [1,%d]", v, lbl, l.B)
		}
		counts[lbl]++
	}
	for lbl := 1; lbl <= l.B; lbl++ {
		if len(l.NodesByLabel[lbl]) != counts[lbl] {
			return fmt.Errorf("label: NodesByLabel[%d] has %d nodes, Labels says %d",
				lbl, len(l.NodesByLabel[lbl]), counts[lbl])
		}
		for _, v := range l.NodesByLabel[lbl] {
			if l.Labels[v] != lbl {
				return fmt.Errorf("label: node %d listed under label %d but has label %d", v, lbl, l.Labels[v])
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
