package label

import (
	"testing"
	"testing/quick"

	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func TestLevelKnownValues(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 0, 4: 2, 5: 0, 6: 1, 7: 0, 8: 3, 12: 2, 1024: 10, 1025: 0}
	for x, want := range cases {
		if got := Level(x); got != want {
			t.Fatalf("Level(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLevelPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Level(0)
}

func TestAncestorDefinition(t *testing.T) {
	// x = 3 = binary 11 has level 0; per the paper A(3) starts 3, 2, 4, 8.
	wants := []int{3, 2, 4, 8, 16}
	for j, want := range wants {
		if got := Ancestor(3, j); got != want {
			t.Fatalf("Ancestor(3,%d) = %d, want %d", j, got, want)
		}
	}
	// x = 12 = 1100 has level 2: ancestors 12, 8, 16.
	if Ancestor(12, 0) != 12 || Ancestor(12, 1) != 8 || Ancestor(12, 2) != 16 {
		t.Fatalf("Ancestor(12, ·) = %d,%d,%d", Ancestor(12, 0), Ancestor(12, 1), Ancestor(12, 2))
	}
}

func TestAncestorLevelIncreases(t *testing.T) {
	check := func(raw uint16, jRaw uint8) bool {
		x := 1 + int(raw%5000)
		j := int(jRaw % 10)
		return Level(Ancestor(x, j)) == Level(x)+j
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorsRespectsBound(t *testing.T) {
	// The non-monotonicity case from the doc comment: with maxValue=5 the
	// only qualifying ancestor of 7 (besides none of 7,6) is 4.
	got := Ancestors(7, 5)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("Ancestors(7,5) = %v, want [4]", got)
	}
	got = Ancestors(3, 20)
	want := []int{3, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("Ancestors(3,20) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ancestors(3,20) = %v, want %v", got, want)
		}
	}
}

func TestAncestorsCountIsLogarithmic(t *testing.T) {
	check := func(raw uint16) bool {
		x := 1 + int(raw)
		maxValue := 65536
		anc := Ancestors(x, maxValue)
		// at most 1 + log2(maxValue) ancestors
		if len(anc) > 17 {
			return false
		}
		for _, a := range anc {
			if a < 1 || a > maxValue || !IsAncestor(a, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorsIncludeSelf(t *testing.T) {
	for x := 1; x <= 200; x++ {
		anc := Ancestors(x, 1000)
		if len(anc) == 0 || anc[0] != x {
			t.Fatalf("Ancestors(%d) does not start with x: %v", x, anc)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	if !IsAncestor(8, 3) {
		t.Fatal("8 should be an ancestor of 3")
	}
	if !IsAncestor(2, 3) {
		t.Fatal("2 should be an ancestor of 3")
	}
	if IsAncestor(6, 3) {
		t.Fatal("6 is not an ancestor of 3")
	}
	if !IsAncestor(5, 5) {
		t.Fatal("x is an ancestor of itself")
	}
	if IsAncestor(3, 8) {
		t.Fatal("a lower-level value cannot be an ancestor")
	}
}

func TestLeastCommonAncestorLevel(t *testing.T) {
	// 3 and 5: ancestors of 3 are 3,2,4,8...; of 5 are 5,6,4,8...; first
	// common ancestor is 4 at level 2.
	if l := LeastCommonAncestorLevel(3, 5); l != 2 {
		t.Fatalf("LCA level of 3,5 = %d, want 2", l)
	}
	if l := LeastCommonAncestorLevel(7, 7); l != 0 {
		t.Fatalf("LCA level of equal values = %d, want their level", l)
	}
}

func TestLCAIsBetweenForPathIndices(t *testing.T) {
	// The Theorem 2 proof uses that the least common ancestor of two indices
	// lies between them; verify on random pairs.
	check := func(a, b uint16) bool {
		x := 1 + int(a%2000)
		y := 1 + int(b%2000)
		l := LeastCommonAncestorLevel(x, y)
		anc := Ancestor(x, l-Level(x))
		lo, hi := x, y
		if lo > hi {
			lo, hi = hi, lo
		}
		return anc >= lo && anc <= hi
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLevelIndexInRange(t *testing.T) {
	if got := MaxLevelIndexInRange(3, 6); got != 4 {
		t.Fatalf("MaxLevelIndexInRange(3,6) = %d, want 4", got)
	}
	if got := MaxLevelIndexInRange(5, 5); got != 5 {
		t.Fatalf("MaxLevelIndexInRange(5,5) = %d, want 5", got)
	}
	if got := MaxLevelIndexInRange(9, 16); got != 16 {
		t.Fatalf("MaxLevelIndexInRange(9,16) = %d, want 16", got)
	}
}

// The paper's well-definedness argument: the maximum level index in a
// consecutive range is unique.
func TestMaxLevelIndexIsUnique(t *testing.T) {
	check := func(a uint16, span uint8) bool {
		lo := 1 + int(a%3000)
		hi := lo + int(span%64)
		best := MaxLevelIndexInRange(lo, hi)
		count := 0
		for i := lo; i <= hi; i++ {
			if Level(i) == Level(best) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromPathDecompositionOnPath(t *testing.T) {
	g := gen.Path(9)
	pd, err := decomp.OfPathGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := FromPathDecomposition(g, pd)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Validate(); err != nil {
		t.Fatal(err)
	}
	if lab.B != pd.B() {
		t.Fatalf("labeling B=%d, decomposition has %d bags", lab.B, pd.B())
	}
	// Every node labeled l must belong to bag l (1-based).
	for lbl := 1; lbl <= lab.B; lbl++ {
		bag := pd.Bags[lbl-1]
		for _, v := range lab.Nodes(lbl) {
			found := false
			for _, u := range bag {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d labeled %d is not in bag %d", v, lbl, lbl)
			}
		}
	}
}

func TestFromPathDecompositionLabelMembership(t *testing.T) {
	rng := xrand.New(3)
	check := func(raw uint16) bool {
		n := 2 + int(raw%80)
		g := gen.RandomTree(n, rng)
		pd, err := decomp.TreeCentroid(g)
		if err != nil {
			return false
		}
		lab, err := FromPathDecomposition(g, pd)
		if err != nil {
			return false
		}
		if lab.Validate() != nil {
			return false
		}
		first, last := pd.NodeIntervals(n)
		for v := 0; v < n; v++ {
			lbl := lab.Labels[v]
			// label must be inside the node's bag interval (1-based)
			if lbl < first[v]+1 || lbl > last[v]+1 {
				return false
			}
			// and must have the maximum level in that interval
			if lbl != MaxLevelIndexInRange(first[v]+1, last[v]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromPathDecompositionRejectsInvalid(t *testing.T) {
	g := gen.Cycle(5)
	bad := decomp.NewPathDecomposition([][]graph.NodeID{{0, 1}, {1, 2}})
	if _, err := FromPathDecomposition(g, bad); err == nil {
		t.Fatal("invalid decomposition accepted")
	}
}

func TestLabelingOnIntervalGraph(t *testing.T) {
	rng := xrand.New(5)
	g, model := gen.RandomIntervalGraph(120, 3, rng)
	pd := decomp.IntervalCliquePath(model)
	lab, err := FromPathDecomposition(g, pd)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Validate(); err != nil {
		t.Fatal(err)
	}
	// All labels must be in [1, B].
	for _, l := range lab.Labels {
		if l < 1 || l > lab.B {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestNodesForUnknownLabel(t *testing.T) {
	g := gen.Path(4)
	pd, _ := decomp.OfPathGraph(g)
	lab, err := FromPathDecomposition(g, pd)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Nodes(0) != nil || lab.Nodes(lab.B+1) != nil {
		t.Fatal("out-of-range labels should return nil")
	}
}
