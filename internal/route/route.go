// Package route implements the oblivious greedy routing process of the
// paper: at every intermediate node the message is forwarded to the
// neighbour (local neighbours plus the node's own long-range contact) that
// is closest to the target according to distances in the underlying graph.
//
// Distances to the target are read through a dist.Source — either an
// analytic closed-form metric (structured families, O(1) per query with no
// per-target state at all, which is what permits million-node graphs) or a
// BFS distance field wrapped via dist.NewField (the exact fallback for
// unstructured graphs).
//
// Long-range contacts are drawn lazily and memoised per trial so that each
// node keeps one consistent contact while only paying for the nodes
// actually visited.  The memo lives in a Scratch — a dense epoch-marked
// buffer that resets in O(1) — so a worker that reuses one Scratch across
// trials routes without any per-trial allocation.
package route

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/sampler"
	"navaug/internal/xrand"
)

// Result describes a single greedy routing trial.
type Result struct {
	// Steps is the number of hops taken (0 when source == target).
	Steps int
	// LongLinksUsed counts the hops that traversed a long-range link.
	LongLinksUsed int
	// Reached reports whether the target was reached within the step cap.
	Reached bool
	// Path is the visited node sequence including source and target.  It is
	// only populated when tracing is requested.
	Path []graph.NodeID
}

// Scratch is reusable per-trial state for routing: the per-node contact
// memo, epoch-marked so a reset costs O(1).  A Scratch is not safe for
// concurrent use; keep one per worker and pass it through Options.  Reuse
// across trials is what makes a routing trial allocation-free.
type Scratch struct {
	memo *sampler.EpochMemo
}

// NewScratch returns a Scratch for routing on graphs with n nodes.
func NewScratch(n int) *Scratch {
	return &Scratch{memo: sampler.NewEpochMemo(n)}
}

// contact returns the memoised long-range contact of u, drawing it on
// first use within the current trial.
func (s *Scratch) contact(inst augment.Instance, u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	if c, ok := s.memo.Get(u); ok {
		return c
	}
	c := inst.Contact(u, rng)
	s.memo.Set(u, c)
	return c
}

// Options tune a routing trial.
type Options struct {
	// MaxSteps caps the number of hops (0 means 4·n, which greedy routing
	// can never legitimately exceed because each hop strictly decreases the
	// distance to the target).
	MaxSteps int
	// Trace records the full visited path in the Result.
	Trace bool
	// Scratch, when non-nil, supplies the reusable trial state; it must have
	// been built for a graph of the same size.  When nil a fresh Scratch is
	// allocated for the trial (convenient, but the hot path — the Monte
	// Carlo worker pool — always passes one per worker).
	Scratch *Scratch
}

// validate checks the endpoints and distance source shared by both routing
// variants, and resolves the trial scratch.
func validate(g *graph.Graph, s, t graph.NodeID, src dist.Source, opts Options) (*Scratch, error) {
	n := g.N()
	if int(s) < 0 || int(s) >= n || int(t) < 0 || int(t) >= n {
		return nil, fmt.Errorf("route: endpoints (%d,%d) out of range [0,%d)", s, t, n)
	}
	if src == nil {
		return nil, fmt.Errorf("route: nil distance source")
	}
	// Sources that know their node count (dist.Field, the analytic family
	// metrics) are checked against the graph up front: a mis-sized source
	// would otherwise index out of range (fields) or silently report wrong
	// distances (metrics) mid-route.
	if s, ok := src.(interface{ N() int }); ok && s.N() != n {
		return nil, fmt.Errorf("route: distance source covers %d nodes, graph has %d", s.N(), n)
	}
	if src.Dist(t, t) != 0 {
		return nil, fmt.Errorf("route: distance source is not rooted at target %d", t)
	}
	if src.Dist(s, t) == graph.Unreachable {
		return nil, fmt.Errorf("route: target %d unreachable from source %d", t, s)
	}
	scratch := opts.Scratch
	if scratch == nil {
		scratch = NewScratch(n)
	} else if scratch.memo.Len() != n {
		return nil, fmt.Errorf("route: scratch was built for %d nodes, graph has %d", scratch.memo.Len(), n)
	}
	scratch.memo.Reset()
	return scratch, nil
}

// Greedy routes a message from s to t on graph g augmented by the given
// instance, steering by src.Dist(v, t) = dist_G(v, t) — an analytic metric
// or a BFS field wrapped with dist.NewField.  The rng drives the lazy
// long-range contact draws.  It returns an error for invalid endpoints, a
// source not rooted at the target or with an unreachable source node, or a
// mis-sized scratch.
func Greedy(g *graph.Graph, inst augment.Instance, s, t graph.NodeID, src dist.Source, rng *xrand.RNG, opts Options) (Result, error) {
	scratch, err := validate(g, s, t, src, opts)
	if err != nil {
		return Result{}, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4*g.N() + 16
	}

	res := Result{}
	if opts.Trace {
		res.Path = append(res.Path, s)
	}
	cur := s
	for cur != t {
		if res.Steps >= maxSteps {
			return res, nil // Reached stays false
		}
		next, viaLong := greedyStep(g, inst, scratch, cur, t, src, rng)
		if next == cur {
			// No neighbour (nor the contact) improves on cur.  With an
			// exact distance source this cannot happen on a reachable
			// pair — some neighbour lies on a shortest path — so this is
			// the approximate-steering case (landmark upper bounds can
			// plateau).  Burning the remaining step budget in place would
			// change nothing; stop with Reached false.
			return res, nil
		}
		if viaLong {
			res.LongLinksUsed++
		}
		cur = next
		res.Steps++
		if opts.Trace {
			res.Path = append(res.Path, cur)
		}
	}
	res.Reached = true
	return res, nil
}

// greedyStep picks the neighbour of cur (including its long-range contact)
// closest to the target; ties prefer local links and then lower node ids,
// which keeps the process deterministic given the drawn contacts.
func greedyStep(g *graph.Graph, inst augment.Instance, scratch *Scratch, cur, t graph.NodeID, src dist.Source, rng *xrand.RNG) (graph.NodeID, bool) {
	best := cur
	bestDist := src.Dist(cur, t)
	viaLong := false
	for _, v := range g.Neighbors(cur) {
		d := src.Dist(v, t)
		if d == graph.Unreachable {
			continue
		}
		if d < bestDist || (d == bestDist && v < best) {
			best = v
			bestDist = d
			viaLong = false
		}
	}
	if c := scratch.contact(inst, cur, rng); c != cur {
		d := src.Dist(c, t)
		if d != graph.Unreachable && d < bestDist {
			best = c
			bestDist = d
			viaLong = true
		}
	}
	return best, viaLong
}

// GreedyWithLookahead is the "know thy neighbour's neighbour" extension
// mentioned in the paper's related work [16]: the routing decision also
// considers the long-range contacts of the current node's local neighbours
// (one hop of lookahead), forwarding towards the neighbour whose own contact
// is closest to the target when that beats every direct option.  The
// traversal still advances one edge per step, so the step count remains
// comparable with plain greedy routing.
func GreedyWithLookahead(g *graph.Graph, inst augment.Instance, s, t graph.NodeID, src dist.Source, rng *xrand.RNG, opts Options) (Result, error) {
	scratch, err := validate(g, s, t, src, opts)
	if err != nil {
		return Result{}, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4*g.N() + 16
	}
	res := Result{}
	if opts.Trace {
		res.Path = append(res.Path, s)
	}
	cur := s
	for cur != t {
		if res.Steps >= maxSteps {
			return res, nil
		}
		// Direct greedy candidate.
		direct, viaLong := greedyStep(g, inst, scratch, cur, t, src, rng)
		directDist := src.Dist(direct, t)
		// Lookahead: neighbour whose own long-range contact is closest.
		bestVia := graph.NodeID(-1)
		bestViaDist := int32(-1)
		for _, v := range g.Neighbors(cur) {
			if src.Dist(v, t) == graph.Unreachable {
				continue
			}
			c := scratch.contact(inst, v, rng)
			d := src.Dist(c, t)
			if d == graph.Unreachable {
				continue
			}
			if bestVia == -1 || d < bestViaDist {
				bestVia = v
				bestViaDist = d
			}
		}
		next := direct
		nextViaLong := viaLong
		// Move towards the lookahead neighbour only when its contact is
		// strictly better than anything reachable directly; the hop itself is
		// a local link.
		if bestVia != -1 && bestViaDist < directDist && bestViaDist < src.Dist(cur, t) {
			next = bestVia
			nextViaLong = false
		}
		if next == cur {
			return res, nil // stuck under approximate steering; see Greedy
		}
		if nextViaLong {
			res.LongLinksUsed++
		}
		cur = next
		res.Steps++
		if opts.Trace {
			res.Path = append(res.Path, cur)
		}
	}
	res.Reached = true
	return res, nil
}
