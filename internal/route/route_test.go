package route

import (
	"testing"
	"testing/quick"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func distTo(g *graph.Graph, t graph.NodeID) dist.Field {
	return dist.NewField(g.BFS(t), t)
}

func TestGreedyWithoutAugmentationFollowsShortestPath(t *testing.T) {
	g := gen.Path(50)
	inst, _ := augment.NewNoAugmentation().Prepare(g)
	rng := xrand.New(1)
	res, err := Greedy(g, inst, 0, 49, distTo(g, 49), rng, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("target not reached")
	}
	if res.Steps != 49 {
		t.Fatalf("steps %d, want 49", res.Steps)
	}
	if res.LongLinksUsed != 0 {
		t.Fatal("no-augmentation run used long links")
	}
	if len(res.Path) != 50 || res.Path[0] != 0 || res.Path[49] != 49 {
		t.Fatalf("trace malformed: len=%d", len(res.Path))
	}
}

func TestGreedySourceEqualsTarget(t *testing.T) {
	g := gen.Cycle(10)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	res, err := Greedy(g, inst, 3, 3, distTo(g, 3), xrand.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 || !res.Reached {
		t.Fatalf("self routing: %+v", res)
	}
}

func TestGreedyValidatesInput(t *testing.T) {
	g := gen.Path(10)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	rng := xrand.New(3)
	if _, err := Greedy(g, inst, 0, 20, distTo(g, 5), rng, Options{}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := Greedy(g, inst, 0, 5, nil, rng, Options{}); err == nil {
		t.Fatal("nil distance source accepted")
	}
	// field built for a smaller graph must error, not index out of range
	if _, err := Greedy(g, inst, 0, 5, dist.NewField(make([]int32, 3), 5), rng, Options{}); err == nil {
		t.Fatal("short distance field accepted")
	}
	// metric of the wrong size must be rejected too
	if _, err := Greedy(g, inst, 0, 5, gen.PathMetric(99), rng, Options{}); err == nil {
		t.Fatal("mis-sized metric accepted")
	}
	// distance field rooted at the wrong node
	if _, err := Greedy(g, inst, 0, 5, dist.NewField(g.BFS(6), 6), rng, Options{}); err == nil {
		t.Fatal("mis-rooted distance source accepted")
	}
	// unreachable target
	dg := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	dinst, _ := augment.NewUniformScheme().Prepare(dg)
	if _, err := Greedy(dg, dinst, 0, 3, distTo(dg, 3), rng, Options{}); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestGreedyStepsNeverExceedDistanceWithoutAugmentation(t *testing.T) {
	rng := xrand.New(4)
	check := func(raw uint16) bool {
		n := 2 + int(raw%100)
		p := 2.5 / float64(n)
		if p > 1 {
			p = 1
		}
		g := gen.ConnectedGNP(n, p, rng)
		inst, _ := augment.NewNoAugmentation().Prepare(g)
		s := graph.NodeID(rng.Intn(n))
		tt := graph.NodeID(rng.Intn(n))
		d := distTo(g, tt)
		res, err := Greedy(g, inst, s, tt, d, rng, Options{})
		if err != nil {
			return false
		}
		return res.Reached && res.Steps == int(d.Dist(s, tt))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with any augmentation, greedy routing reaches the target in at
// most dist(s,t) * 1 steps... actually in at most dist(s,t) steps is false;
// the correct invariant is that every step strictly decreases the distance,
// so Steps <= dist(s,t) always holds.
func TestGreedyStepsBoundedByInitialDistance(t *testing.T) {
	rng := xrand.New(5)
	schemes := []augment.Scheme{
		augment.NewUniformScheme(),
		augment.NewBallScheme(),
		augment.NewHarmonicScheme(1),
	}
	g := gen.Grid2D(15, 15)
	for _, s := range schemes {
		inst, err := s.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			src := graph.NodeID(rng.Intn(g.N()))
			tgt := graph.NodeID(rng.Intn(g.N()))
			d := distTo(g, tgt)
			res, err := Greedy(g, inst, src, tgt, d, rng, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reached {
				t.Fatalf("%s: target not reached", s.Name())
			}
			if res.Steps > int(d.Dist(src, tgt)) {
				t.Fatalf("%s: %d steps exceeds initial distance %d", s.Name(), res.Steps, d.Dist(src, tgt))
			}
		}
	}
}

func TestGreedyTraceIsAWalkWithDecreasingDistance(t *testing.T) {
	rng := xrand.New(6)
	g := gen.Grid2D(12, 12)
	inst, _ := augment.NewBallScheme().Prepare(g)
	src, tgt := graph.NodeID(0), graph.NodeID(g.N()-1)
	d := distTo(g, tgt)
	res, err := Greedy(g, inst, src, tgt, d, rng, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("not reached")
	}
	for i := 1; i < len(res.Path); i++ {
		prev, cur := res.Path[i-1], res.Path[i]
		if d.Dist(cur, tgt) >= d.Dist(prev, tgt) {
			t.Fatalf("distance did not decrease at step %d (%d -> %d)", i, d.Dist(prev, tgt), d.Dist(cur, tgt))
		}
		// Every hop is either a graph edge or a long-range link; long-range
		// links can go anywhere, so only check the local case loosely: if it
		// is not an edge it must have been a long link.
	}
	if res.LongLinksUsed > res.Steps {
		t.Fatal("more long links than steps")
	}
}

func TestGreedyLongLinksActuallyUsedOnLongPaths(t *testing.T) {
	// On a long path with uniform augmentation, routing across the whole
	// path will almost surely use at least one long link.
	g := gen.Path(2000)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	rng := xrand.New(7)
	used := 0
	for trial := 0; trial < 10; trial++ {
		res, err := Greedy(g, inst, 0, 1999, distTo(g, 1999), rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached {
			t.Fatal("not reached")
		}
		used += res.LongLinksUsed
	}
	if used == 0 {
		t.Fatal("uniform augmentation never used a long link across 10 trials")
	}
}

func TestGreedyMaxStepsCap(t *testing.T) {
	g := gen.Path(100)
	inst, _ := augment.NewNoAugmentation().Prepare(g)
	res, err := Greedy(g, inst, 0, 99, distTo(g, 99), xrand.New(8), Options{MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("should not reach under a tiny cap")
	}
	if res.Steps != 5 {
		t.Fatalf("steps %d, want 5", res.Steps)
	}
}

func TestGreedyDeterministicGivenSeed(t *testing.T) {
	g := gen.Grid2D(10, 10)
	scheme := augment.NewBallScheme()
	inst, _ := scheme.Prepare(g)
	d := distTo(g, 99)
	r1, err := Greedy(g, inst, 0, 99, d, xrand.New(42), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Greedy(g, inst, 0, 99, d, xrand.New(42), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || len(r1.Path) != len(r2.Path) {
		t.Fatal("same seed produced different routes")
	}
	for i := range r1.Path {
		if r1.Path[i] != r2.Path[i] {
			t.Fatal("same seed produced different paths")
		}
	}
}

func TestGreedyUniformBeatsNoAugmentationOnAverage(t *testing.T) {
	// Sanity check of the very premise of the paper: augmentation helps.
	g := gen.Path(3000)
	rng := xrand.New(9)
	noneInst, _ := augment.NewNoAugmentation().Prepare(g)
	uniInst, _ := augment.NewUniformScheme().Prepare(g)
	d := distTo(g, 2999)
	noneSteps, uniSteps := 0, 0
	const trials = 20
	for i := 0; i < trials; i++ {
		rn, err := Greedy(g, noneInst, 0, 2999, d, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ru, err := Greedy(g, uniInst, 0, 2999, d, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		noneSteps += rn.Steps
		uniSteps += ru.Steps
	}
	if uniSteps >= noneSteps {
		t.Fatalf("uniform augmentation (%d total steps) did not beat plain walking (%d)", uniSteps, noneSteps)
	}
}

func TestGreedyWithLookaheadReachesTarget(t *testing.T) {
	rng := xrand.New(10)
	g := gen.Grid2D(15, 15)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	for trial := 0; trial < 30; trial++ {
		src := graph.NodeID(rng.Intn(g.N()))
		tgt := graph.NodeID(rng.Intn(g.N()))
		d := distTo(g, tgt)
		res, err := GreedyWithLookahead(g, inst, src, tgt, d, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached {
			t.Fatalf("lookahead routing failed to reach target (trial %d)", trial)
		}
	}
}

func TestGreedyWithLookaheadValidatesInput(t *testing.T) {
	g := gen.Path(10)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	rng := xrand.New(11)
	if _, err := GreedyWithLookahead(g, inst, -1, 5, distTo(g, 5), rng, Options{}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := GreedyWithLookahead(g, inst, 0, 5, nil, rng, Options{}); err == nil {
		t.Fatal("nil distance source accepted")
	}
	if _, err := GreedyWithLookahead(g, inst, 0, 5, dist.NewField(make([]int32, 2), 5), rng, Options{}); err == nil {
		t.Fatal("short distance field accepted")
	}
}

func TestGreedyWithLookaheadNotWorseOnAverage(t *testing.T) {
	// Lookahead should help (or at least not catastrophically hurt) on a
	// long cycle with uniform augmentation.
	g := gen.Cycle(2000)
	rng := xrand.New(12)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	d := distTo(g, 1000)
	plain, look := 0, 0
	const trials = 30
	for i := 0; i < trials; i++ {
		rp, err := Greedy(g, inst, 0, 1000, d, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rl, err := GreedyWithLookahead(g, inst, 0, 1000, d, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rp.Reached || !rl.Reached {
			t.Fatal("routing failed")
		}
		plain += rp.Steps
		look += rl.Steps
	}
	if float64(look) > 1.5*float64(plain) {
		t.Fatalf("lookahead (%d) much worse than plain greedy (%d)", look, plain)
	}
}

func TestGreedyOnTheorem2PathScheme(t *testing.T) {
	// End-to-end: the Theorem 2 scheme on a path must route correctly.
	g := gen.Path(512)
	scheme := augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g)
	})
	inst, err := scheme.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(13)
	d := distTo(g, 511)
	res, err := Greedy(g, inst, 0, 511, d, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("not reached")
	}
	if res.Steps > 511 {
		t.Fatalf("steps %d exceed path distance", res.Steps)
	}
}

func BenchmarkGreedyUniformPath(b *testing.B) {
	g := gen.Path(10000)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	d := distTo(g, 9999)
	rng := xrand.New(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(g, inst, 0, 9999, d, rng, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyBallGrid(b *testing.B) {
	g := gen.Grid2D(100, 100)
	inst, _ := augment.NewBallScheme().Prepare(g)
	d := distTo(g, graph.NodeID(g.N()-1))
	rng := xrand.New(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(g, inst, 0, graph.NodeID(g.N()-1), d, rng, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// plateauSource reports every node at the same positive distance from the
// target (except the target itself) — the worst case of approximate
// steering, where no neighbour ever looks strictly closer.
type plateauSource struct{ t graph.NodeID }

func (p plateauSource) Dist(u, _ graph.NodeID) int32 {
	if u == p.t {
		return 0
	}
	return 5
}

// TestGreedyStuckUnderApproximateSteeringStopsEarly pins the degraded-mode
// contract: steering by a distance source that plateaus must terminate
// immediately with Reached false instead of burning the 4n step budget in
// place.
func TestGreedyStuckUnderApproximateSteeringStopsEarly(t *testing.T) {
	g := gen.Path(64)
	inst, _ := augment.NewNoAugmentation().Prepare(g)
	res, err := Greedy(g, inst, 0, 63, plateauSource{t: 63}, xrand.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("plateau source cannot reach the target")
	}
	if res.Steps != 0 {
		t.Fatalf("stuck route took %d steps, want 0 (early exit)", res.Steps)
	}
	res, err = GreedyWithLookahead(g, inst, 0, 63, plateauSource{t: 63}, xrand.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached || res.Steps != 0 {
		t.Fatalf("lookahead stuck route: %+v, want 0 steps", res)
	}
}

// TestGreedySteersByLandmarkBounds exercises the serve layer's last-ladder
// tier end to end at the routing level: landmark upper bounds are not
// exact, but with enough landmarks on a tree they still route, and with a
// landmark at every node they are exact and must reach.
func TestGreedySteersByLandmarkBounds(t *testing.T) {
	g := gen.RandomTree(200, xrand.New(5))
	inst, _ := augment.NewNoAugmentation().Prepare(g)
	// k = n: every node is a landmark, bounds are exact, routing must work
	// exactly like BFS-field steering.
	exactLm := dist.NewLandmarkOracle(g, g.N(), xrand.New(7))
	rng := xrand.New(9)
	for i := 0; i < 20; i++ {
		s := graph.NodeID(rng.Intn(g.N()))
		tt := graph.NodeID(rng.Intn(g.N()))
		res, err := Greedy(g, inst, s, tt, exactLm, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached {
			t.Fatalf("exact landmark steering failed to reach (%d -> %d)", s, tt)
		}
		if want := g.BFS(tt)[s]; int32(res.Steps) != want {
			t.Fatalf("exact landmark steering took %d steps for distance %d", res.Steps, want)
		}
	}
	// Sparse landmarks: answers are upper bounds; routing must terminate
	// without error and never report Reached falsely.
	sparse := dist.NewLandmarkOracle(g, 8, xrand.New(7))
	for i := 0; i < 20; i++ {
		s := graph.NodeID(rng.Intn(g.N()))
		tt := graph.NodeID(rng.Intn(g.N()))
		res, err := Greedy(g, inst, s, tt, sparse, rng, Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached && len(res.Path) > 0 && res.Path[len(res.Path)-1] != tt {
			t.Fatalf("claimed reached but path ends at %d, not %d", res.Path[len(res.Path)-1], tt)
		}
	}
}
